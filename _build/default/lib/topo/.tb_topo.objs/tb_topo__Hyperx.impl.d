lib/topo/hyperx.ml: Array Option Printf Tb_graph Topology
