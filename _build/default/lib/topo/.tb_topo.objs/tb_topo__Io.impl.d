lib/topo/io.ml: Array Buffer Fun List Printf String Tb_graph Topology
