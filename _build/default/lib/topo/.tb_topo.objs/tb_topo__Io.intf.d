lib/topo/io.mli: Topology
