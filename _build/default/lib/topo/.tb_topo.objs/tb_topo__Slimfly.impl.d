lib/topo/slimfly.ml: Array Printf Tb_graph Topology
