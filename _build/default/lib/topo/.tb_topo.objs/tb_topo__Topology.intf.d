lib/topo/topology.mli: Format Tb_graph
