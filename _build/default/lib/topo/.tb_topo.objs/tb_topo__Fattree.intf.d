lib/topo/fattree.mli: Tb_graph Topology
