lib/topo/slimfly.mli: Tb_graph Topology
