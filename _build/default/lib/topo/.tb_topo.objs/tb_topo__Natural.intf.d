lib/topo/natural.mli: Tb_graph Tb_prelude Topology
