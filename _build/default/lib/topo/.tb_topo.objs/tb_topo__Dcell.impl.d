lib/topo/dcell.ml: Array Printf Tb_graph Topology
