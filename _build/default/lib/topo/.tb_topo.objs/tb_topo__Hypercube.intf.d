lib/topo/hypercube.mli: Tb_graph Topology
