lib/topo/catalog.ml: Bcube Dcell Dragonfly Fattree Flat_butterfly Hypercube Hyperx Jellyfish List Longhop Slimfly Tb_prelude
