lib/topo/hypercube.ml: Printf Tb_graph Topology
