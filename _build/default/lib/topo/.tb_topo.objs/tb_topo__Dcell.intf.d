lib/topo/dcell.mli: Topology
