lib/topo/flat_butterfly.ml: Array Printf Tb_graph Topology
