lib/topo/longhop.mli: Tb_graph Topology
