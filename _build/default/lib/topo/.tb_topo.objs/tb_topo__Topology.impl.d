lib/topo/topology.ml: Array Fmt Printf Tb_graph
