lib/topo/natural.ml: Array Hashtbl List Option Printf Tb_graph Tb_prelude Topology
