lib/topo/bcube.mli: Topology
