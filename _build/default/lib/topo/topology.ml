module Graph = Tb_graph.Graph

(* A topology instance: a switch-level graph plus the placement of
   servers (traffic endpoints).

   Two shapes exist in the paper's zoo:
   - switch-centric networks (fat tree, hypercube, Jellyfish, ...):
     every graph node is a switch, and [hosts.(v)] servers hang off
     switch [v] over infinite-capacity edge links (so they are not
     represented as graph nodes — the TM aggregates to switch pairs);
   - server-centric networks (BCube, DCell): servers relay traffic, so
     they are real graph nodes with unit-capacity links, flagged by
     [hosts.(v) = 1] and identified by [kind]. *)

type kind = Switch_centric | Server_centric

type t = {
  name : string;
  params : string;
  kind : kind;
  graph : Graph.t;
  hosts : int array; (* servers attached at each node *)
}

let make ~name ~params ~kind ~graph ~hosts =
  if Array.length hosts <> Graph.num_nodes graph then
    invalid_arg "Topology.make: hosts length mismatch";
  Array.iter
    (fun h -> if h < 0 then invalid_arg "Topology.make: negative hosts")
    hosts;
  { name; params; kind; graph; hosts }

let num_servers t = Array.fold_left ( + ) 0 t.hosts

let num_switches t =
  match t.kind with
  | Switch_centric -> Graph.num_nodes t.graph
  | Server_centric ->
    (* Server-centric nodes with hosts = 0 are the switches. *)
    Array.fold_left (fun acc h -> if h = 0 then acc + 1 else acc) 0 t.hosts

(* Nodes that terminate traffic, with multiplicity = attached servers. *)
let endpoint_nodes t =
  let out = ref [] in
  for v = Array.length t.hosts - 1 downto 0 do
    if t.hosts.(v) > 0 then out := v :: !out
  done;
  Array.of_list !out

(* One entry per server: the node it attaches to. *)
let server_locations t =
  let total = num_servers t in
  let out = Array.make total (-1) in
  let k = ref 0 in
  Array.iteri
    (fun v h ->
      for _ = 1 to h do
        out.(!k) <- v;
        incr k
      done)
    t.hosts;
  out

let label t = Printf.sprintf "%s(%s)" t.name t.params

let pp ppf t =
  Fmt.pf ppf "%s: %a, %d servers" (label t) Graph.pp t.graph (num_servers t)

(* Uniform helper: switch-centric topology with [h] servers at every
   switch. *)
let switch_centric ~name ~params ~hosts_per_switch graph =
  make ~name ~params ~kind:Switch_centric ~graph
    ~hosts:(Array.make (Graph.num_nodes graph) hosts_per_switch)

(* Same fabric with a different server placement. *)
let with_hosts t hosts = make ~name:t.name ~params:t.params ~kind:t.kind ~graph:t.graph ~hosts

(* Same fabric with exactly one server per *endpoint* — the per-switch
   unit-volume convention used by the TM-ladder experiments. Nodes that
   host no servers (fat-tree aggregation/core switches) stay hostless. *)
let unit_hosts t =
  match t.kind with
  | Server_centric -> t
  | Switch_centric -> with_hosts t (Array.map (fun h -> min h 1) t.hosts)

(* [total] servers spread as evenly as possible over all [n] nodes (the
   Jellyfish placement used for random-graph baselines). Server j lands
   on node floor(j * n / total), striding across the whole index range —
   filling a prefix instead would recreate the original placement
   whenever the input's endpoints happen to be the low indices. *)
let spread_hosts ~n ~total =
  let hosts = Array.make n 0 in
  for j = 0 to total - 1 do
    let v = j * n / total in
    hosts.(min (n - 1) v) <- hosts.(min (n - 1) v) + 1
  done;
  hosts
