(** Plain-text topology files.

    Format, one directive per line ([#] comments):
    {v
    name <string>          optional
    kind switch|server     optional, default switch
    nodes <n>              required first
    hosts <v> <count>      servers at node v (default: 1 everywhere if
                           no hosts directive appears at all)
    hosts-all <count>
    edge <u> <v> [cap]     undirected link, capacity defaults to 1
    v} *)

exception Parse_error of int * string

val of_string : string -> Topology.t
val load : string -> Topology.t
val to_string : Topology.t -> string
val save : Topology.t -> string -> unit
