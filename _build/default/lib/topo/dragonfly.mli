(** Dragonfly (Kim et al.): complete-graph groups of [a] routers with
    [p] servers and [h] global links per router, at the maximum size
    g = a*h + 1 groups with one global link per group pair. *)

val make : ?p:int -> ?a:int -> ?h:int -> unit -> Topology.t

(** The balanced recommendation a = 2p = 2h, parameterized by [h]. *)
val balanced : h:int -> unit -> Topology.t
