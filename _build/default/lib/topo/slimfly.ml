module Graph = Tb_graph.Graph

(* Slim Fly [Besta-Hoefler, SC'14]: the MMS (McKay-Miller-Siran) graph
   family, diameter-2 near-Moore graphs over a finite field F_q.

   We implement the prime-field construction for q = 4w + 1 (delta = 1):
   vertices are two blocks of q^2 routers, (0, x, y) and (1, m, c) with
   x, y, m, c in F_q. With xi a primitive root of F_q,
     X  = { xi^0, xi^2, ..., xi^(q-3) }   (even powers)
     X' = { xi^1, xi^3, ..., xi^(q-2) }   (odd powers)
   edges:
     (0, x, y) ~ (0, x, y')  iff  y - y' in X
     (1, m, c) ~ (1, m, c')  iff  c - c' in X'
     (0, x, y) ~ (1, m, c)   iff  y = m * x + c.
   Network degree is (3q - 1) / 2; the paper attaches roughly degree/2
   servers per router. *)

let is_prime q =
  q >= 2
  &&
  let rec go d = d * d > q || (q mod d <> 0 && go (d + 1)) in
  go 2

let primitive_root q =
  (* Brute force: order of g must be q-1. Fine for the small prime
     fields used here. *)
  let order g =
    let rec go x k = if x = 1 then k else go (x * g mod q) (k + 1) in
    go (g mod q) 1
  in
  let rec find g =
    if g >= q then invalid_arg "Slimfly.primitive_root"
    else if order g = q - 1 then g
    else find (g + 1)
  in
  find 2

(* Admissible prime q with q mod 4 = 1. *)
let valid_q q = is_prime q && q mod 4 = 1

let network_degree ~q = ((3 * q) - 1) / 2

let graph ~q =
  if not (valid_q q) then
    invalid_arg "Slimfly.graph: need a prime q with q mod 4 = 1";
  let xi = primitive_root q in
  let pow = Array.make (q - 1) 1 in
  for i = 1 to q - 2 do
    pow.(i) <- pow.(i - 1) * xi mod q
  done;
  let in_x = Array.make q false and in_x' = Array.make q false in
  for i = 0 to q - 2 do
    if i mod 2 = 0 then in_x.(pow.(i)) <- true else in_x'.(pow.(i)) <- true
  done;
  let n = 2 * q * q in
  let a_vertex x y = (x * q) + y in
  let b_vertex m c = (q * q) + (m * q) + c in
  let edges = ref [] in
  for x = 0 to q - 1 do
    for y = 0 to q - 1 do
      for y' = y + 1 to q - 1 do
        if in_x.((y - y' + q) mod q) then
          edges := (a_vertex x y, a_vertex x y') :: !edges
      done
    done
  done;
  for m = 0 to q - 1 do
    for c = 0 to q - 1 do
      for c' = c + 1 to q - 1 do
        if in_x'.((c - c' + q) mod q) then
          edges := (b_vertex m c, b_vertex m c') :: !edges
      done
    done
  done;
  for x = 0 to q - 1 do
    for y = 0 to q - 1 do
      for m = 0 to q - 1 do
        let c = ((y - (m * x)) mod q + q) mod q in
        edges := (a_vertex x y, b_vertex m c) :: !edges
      done
    done
  done;
  Graph.of_unit_edges ~n !edges

let make ?hosts_per_switch ~q () =
  let h =
    match hosts_per_switch with
    | Some h -> h
    | None -> max 1 (network_degree ~q / 2)
  in
  Topology.switch_centric ~name:"SlimFly"
    ~params:(Printf.sprintf "q=%d,h=%d" q h)
    ~hosts_per_switch:h (graph ~q)
