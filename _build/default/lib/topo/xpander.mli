(** Xpander (Valadarsky et al.): the k-lift of K_{d+1} — a
    deterministic-structure expander with Jellyfish-like performance;
    [degree]-regular on [lift * (degree + 1)] switches. *)

module Graph = Tb_graph.Graph
module Rng = Tb_prelude.Rng

val graph : rng:Rng.t -> lift:int -> degree:int -> Graph.t

val make :
  ?hosts_per_switch:int ->
  rng:Rng.t ->
  lift:int ->
  degree:int ->
  unit ->
  Topology.t
