module Graph = Tb_graph.Graph

(* Binary hypercube [Bhuyan-Agrawal]: 2^dim switches, switch u and
   u lxor (1 lsl b) adjacent for every bit b. *)

let graph ~dim =
  if dim < 1 || dim > 20 then invalid_arg "Hypercube.graph: dim out of range";
  let n = 1 lsl dim in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to dim - 1 do
      let v = u lxor (1 lsl b) in
      if u < v then edges := (u, v) :: !edges
    done
  done;
  Graph.of_unit_edges ~n !edges

let make ?(hosts_per_switch = 1) ~dim () =
  Topology.switch_centric ~name:"Hypercube"
    ~params:(Printf.sprintf "dim=%d,h=%d" dim hosts_per_switch)
    ~hosts_per_switch (graph ~dim)
