(** A topology instance: a switch-level graph plus server placement.

    Switch-centric networks (fat tree, hypercube, Jellyfish, ...) attach
    [hosts.(v)] servers to switch [v] over infinite-capacity edge links,
    so servers are not graph nodes. Server-centric networks (BCube,
    DCell) relay traffic through servers, which therefore appear as
    graph nodes with unit-capacity links and [hosts.(v) = 1]. *)

module Graph = Tb_graph.Graph

type kind = Switch_centric | Server_centric

type t = {
  name : string;
  params : string; (** human-readable parameter summary *)
  kind : kind;
  graph : Graph.t;
  hosts : int array; (** servers attached at each node *)
}

(** Raises [Invalid_argument] on a hosts/graph size mismatch or negative
    host counts. *)
val make :
  name:string ->
  params:string ->
  kind:kind ->
  graph:Graph.t ->
  hosts:int array ->
  t

val num_servers : t -> int
val num_switches : t -> int

(** Nodes that terminate traffic (hosts > 0), ascending. *)
val endpoint_nodes : t -> int array

(** One entry per server: the node it attaches to. *)
val server_locations : t -> int array

(** ["Name(params)"]. *)
val label : t -> string

val pp : Format.formatter -> t -> unit

(** Switch-centric topology with [hosts_per_switch] servers at every
    switch. *)
val switch_centric :
  name:string -> params:string -> hosts_per_switch:int -> Graph.t -> t

(** Same fabric, different server placement. *)
val with_hosts : t -> int array -> t

(** Same fabric with one server per endpoint node (per-switch
    unit-volume TM convention; hostless nodes stay hostless); identity
    on server-centric topologies. *)
val unit_hosts : t -> t

(** [total] servers spread as evenly as possible over [n] nodes. *)
val spread_hosts : n:int -> total:int -> int array
