module Graph = Tb_graph.Graph

(* DCell(n, k) [Guo et al., SIGCOMM'08]: recursive server-centric
   topology. DCell_0 is n servers on one switch; DCell_l consists of
   g_l = t_{l-1} + 1 copies of DCell_{l-1} with one server-to-server
   link between every pair of copies, following the paper's BuildDCells
   rule: sub-DCell i's server with uid (j - 1) links to sub-DCell j's
   server with uid i, for i < j. *)

(* t_l = servers in a DCell_l; g_l = sub-DCells per DCell_l. *)
let rec servers_in ~n l = if l = 0 then n else g_of ~n l * servers_in ~n (l - 1)
and g_of ~n l = servers_in ~n (l - 1) + 1

let make ~n ~k () =
  if n < 2 || k < 0 then invalid_arg "Dcell.make";
  let total_servers = servers_in ~n k in
  let num_switches = total_servers / n in
  (* Server uids are global [0, total_servers); DCell_0 index s/n gives
     its switch. Switch ids follow servers. *)
  let total_nodes = total_servers + num_switches in
  let edges = ref [] in
  (* Level-0: connect each server to its DCell_0 switch. *)
  for s = 0 to total_servers - 1 do
    edges := (s, total_servers + (s / n)) :: !edges
  done;
  (* Recursive level-l links. [base] is the uid offset of this sub-tree. *)
  let rec build base l =
    if l > 0 then begin
      let sub = servers_in ~n (l - 1) in
      let g = g_of ~n l in
      for i = 0 to g - 1 do
        build (base + (i * sub)) (l - 1)
      done;
      for i = 0 to g - 1 do
        for j = i + 1 to g - 1 do
          let u = base + (i * sub) + (j - 1) in
          let v = base + (j * sub) + i in
          edges := (u, v) :: !edges
        done
      done
    end
  in
  build 0 k;
  let gph = Graph.of_unit_edges ~n:total_nodes !edges in
  let hosts =
    Array.init total_nodes (fun v -> if v < total_servers then 1 else 0)
  in
  Topology.make ~name:"DCell" ~params:(Printf.sprintf "n=%d,k=%d" n k)
    ~kind:Topology.Server_centric ~graph:gph ~hosts
