(** Slim Fly (Besta–Hoefler): McKay–Miller–Širáň diameter-2 graphs over
    a prime field F_q with q ≡ 1 (mod 4); 2q² routers of degree
    (3q−1)/2. *)

module Graph = Tb_graph.Graph

val is_prime : int -> bool
val primitive_root : int -> int

(** Admissible parameter: prime and ≡ 1 (mod 4), e.g. 5, 13, 17, 29. *)
val valid_q : int -> bool

val network_degree : q:int -> int

(** Raises [Invalid_argument] on inadmissible [q]. *)
val graph : q:int -> Graph.t

(** Default servers per router: about half the network degree. *)
val make : ?hosts_per_switch:int -> q:int -> unit -> Topology.t
