module Graph = Tb_graph.Graph

(* Three-level k-ary fat tree [Al-Fares et al., SIGCOMM'08]:
   k pods; per pod k/2 edge and k/2 aggregation switches; (k/2)^2 core
   switches; k/2 servers per edge switch. k^3/4 servers total, all links
   unit capacity. Nonblocking by construction. *)

let graph ~k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Fattree.graph: k must be even";
  let half = k / 2 in
  let num_edge = k * half in
  let num_agg = k * half in
  let num_core = half * half in
  let n = num_edge + num_agg + num_core in
  let edge_sw pod e = (pod * half) + e in
  let agg_sw pod a = num_edge + (pod * half) + a in
  let core_sw a j = num_edge + num_agg + (a * half) + j in
  let edges = ref [] in
  for pod = 0 to k - 1 do
    for e = 0 to half - 1 do
      for a = 0 to half - 1 do
        edges := (edge_sw pod e, agg_sw pod a) :: !edges
      done
    done;
    (* Aggregation switch a of every pod talks to core group a. *)
    for a = 0 to half - 1 do
      for j = 0 to half - 1 do
        edges := (agg_sw pod a, core_sw a j) :: !edges
      done
    done
  done;
  Graph.of_unit_edges ~n !edges

let make ~k () =
  let g = graph ~k in
  let half = k / 2 in
  let num_edge = k * half in
  let hosts =
    Array.init (Graph.num_nodes g) (fun v -> if v < num_edge then half else 0)
  in
  Topology.make ~name:"FatTree" ~params:(Printf.sprintf "k=%d" k)
    ~kind:Topology.Switch_centric ~graph:g ~hosts

(* Index helpers exposed for the LLSKR replication. *)
let num_edge_switches ~k = k * k / 2
let servers_per_edge ~k = k / 2
