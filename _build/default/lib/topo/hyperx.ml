module Graph = Tb_graph.Graph

(* HyperX [Ahn et al., SC'09]: L dimensions of sizes S_1..S_L, full mesh
   within each dimension, T servers per switch (we use the regular
   variant: equal S per dimension, unit link capacity K = 1).

   Like the paper, instances are chosen by an optimizer: given a switch
   radix, a server-count target, and a relative bisection-bandwidth
   target beta, pick the cheapest (fewest switches, then fewest links)
   regular HyperX satisfying them. For a regular HyperX with K = 1 the
   worst dimension-aligned bisection cut gives relative bisection
   S / (4 * T) * 2 = S^(L+1)/4 links over T*S^L/2 hosts = S / (2T)
   (S even; the floor-adjusted formula below handles odd S). The
   discreteness of this search is what makes HyperX's performance
   irregular across scale, which Fig. 7 exhibits. *)

type config = { l : int; s : int; t : int }

let num_switches c = int_of_float (float_of_int c.s ** float_of_int c.l)
let num_servers c = c.t * num_switches c
let switch_radix c = c.t + (c.l * (c.s - 1))

(* Relative bisection: cutting one dimension in half severs
   floor(S/2)*ceil(S/2) links per row and S^(L-1) rows; dividing by half
   the hosts T*S^L/2 gives the ratio. *)
let relative_bisection c =
  let s = float_of_int c.s and t = float_of_int c.t in
  let half = float_of_int (c.s / 2) *. float_of_int ((c.s + 1) / 2) in
  half /. s /. (t /. 2.0)

let graph c =
  let n = num_switches c in
  let pow =
    Array.init (c.l + 1) (fun i ->
        int_of_float (float_of_int c.s ** float_of_int i))
  in
  let digit u d = u / pow.(d) mod c.s in
  let with_digit u d x = u + ((x - digit u d) * pow.(d)) in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for d = 0 to c.l - 1 do
      for x = digit u d + 1 to c.s - 1 do
        edges := (u, with_digit u d x) :: !edges
      done
    done
  done;
  Graph.of_unit_edges ~n !edges

let make c =
  Topology.switch_centric ~name:"HyperX"
    ~params:(Printf.sprintf "L=%d,S=%d,T=%d" c.l c.s c.t)
    ~hosts_per_switch:c.t (graph c)

(* Least-cost regular HyperX with >= [servers] hosts, >= [bisection]
   relative bisection, and switch radix <= [radix]. Cost order: switch
   count, then total links. *)
(* L = 1 (a single full mesh) is excluded: it trivially wins the cost
   race at bench-scale sizes but is not a HyperX-like design point (real
   deployments are forced to L >= 2 by radix limits). *)
let search ?(radix = 32) ~servers ~bisection () =
  let best = ref None in
  for l = 2 to 5 do
    for s = 2 to 40 do
      let sw = float_of_int s ** float_of_int l in
      if sw <= 1_000_000.0 then begin
        (* Smallest T meeting the server target. *)
        let t =
          int_of_float (ceil (float_of_int servers /. sw))
        in
        if t >= 1 then begin
          let c = { l; s; t } in
          if
            switch_radix c <= radix
            && relative_bisection c >= bisection
            && num_servers c >= servers
          then begin
            let links = num_switches c * l * (s - 1) / 2 in
            let cost = (num_switches c, links) in
            match !best with
            | Some (bc, _) when bc <= cost -> ()
            | _ -> best := Some (cost, c)
          end
        end
      end
    done
  done;
  Option.map snd !best
