(** Instance enumeration for the experiments: per family a size sweep
    (Figs. 5/6), a mid-size representative (Figs. 4, 10-14), and small
    instances for the brute-force cut studies (Fig. 3, Table II).
    Sizes are scaled to what the pure-OCaml solver computes in seconds
    per point. *)

module Rng = Tb_prelude.Rng

type family =
  | Bcube
  | Dcell
  | Dragonfly
  | Fattree
  | Flattened_bf
  | Hypercube
  | Hyperx
  | Jellyfish
  | Longhop
  | Slimfly

val all_families : family list
val family_name : family -> string

(** Size sweep, increasing server count. [rng] matters for Jellyfish. *)
val sweep : ?rng:Rng.t -> family -> Topology.t list

val representative : ?rng:Rng.t -> family -> Topology.t
val small : ?rng:Rng.t -> family -> Topology.t list
