(** Brute-force cut enumeration, capped like the paper's "limited
    brute-force computation" (10,000 cuts by default). *)

module Graph = Tb_graph.Graph

val default_cap : int

(** Iterate proper cuts as bitmasks (each complementary pair once) up to
    the cap. The callback's array is reused between calls. *)
val iter : ?max_cuts:int -> Graph.t -> (Cut.t -> unit) -> unit

(** Best (minimum) sparsity among enumerated cuts, with a witness. *)
val sparsest :
  ?max_cuts:int -> Graph.t -> (int * int * float) array -> float * Cut.t option

(** Whether the cap covers the whole cut space of this graph. *)
val exhaustive : Graph.t -> max_cuts:int -> bool
