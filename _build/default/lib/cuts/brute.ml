module Graph = Tb_graph.Graph

(* Brute-force cut enumeration. Full enumeration is 2^(n-1) - 1 proper
   cuts (fixing one node's side kills the complement symmetry); like the
   paper we cap the number of inspected cuts (10,000 by default) so the
   estimator also runs as a "limited brute force" pass on larger
   networks. *)

let default_cap = 10_000

(* Iterate cuts as bitmasks over nodes [0, n-1) — node n-1 stays outside,
   covering each complementary pair once. Calls [f cut] until the cap is
   reached. *)
let iter ?(max_cuts = default_cap) g f =
  let n = Graph.num_nodes g in
  if n < 2 then invalid_arg "Brute.iter";
  (* For networks beyond 62 nodes the full space cannot be indexed in an
     int, but the capped prefix still can (masks up to [max_cuts] touch
     only the low bits) — that is precisely the paper's "limited brute
     force on all networks". *)
  let count =
    if n - 1 >= 62 then max_cuts else min ((1 lsl (n - 1)) - 1) max_cuts
  in
  let cut = Array.make n false in
  for mask = 1 to count do
    for v = 0 to n - 2 do
      cut.(v) <- mask land (1 lsl v) <> 0
    done;
    f cut
  done

(* Best (minimum) sparsity among enumerated cuts. *)
let sparsest ?max_cuts g flows =
  let best = ref infinity in
  let best_cut = ref None in
  iter ?max_cuts g (fun cut ->
      let s = Cut.sparsity g flows cut in
      if s < !best then begin
        best := s;
        best_cut := Some (Array.copy cut)
      end);
  (!best, !best_cut)

(* Whether the instance is small enough for the cap to mean exhaustive
   enumeration. *)
let exhaustive g ~max_cuts =
  let n = Graph.num_nodes g in
  n - 1 < 62 && (1 lsl (n - 1)) - 1 <= max_cuts
