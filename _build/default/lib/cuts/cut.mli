(** Cuts and their sparsity under a traffic matrix.

    The sparsity of a cut is the throughput upper bound it induces:
    undirected crossing capacity over the larger directional demand
    crossing it. *)

module Graph = Tb_graph.Graph

(** Membership array: [cut.(v)] iff [v] is inside the subset. *)
type t = bool array

val of_list : n:int -> int list -> t
val size : t -> int

(** Neither empty nor full. *)
val is_proper : t -> bool

(** Undirected capacity crossing the cut. *)
val capacity : Graph.t -> t -> float

(** [(demand in->out, demand out->in)] for a flow list. *)
val demand_across : (int * int * float) array -> t -> float * float

(** [capacity / max directional demand]; [infinity] when no demand
    crosses. Raises [Invalid_argument] on improper cuts. *)
val sparsity : Graph.t -> (int * int * float) array -> t -> float

val sparsity_tm : Graph.t -> Tb_tm.Tm.t -> t -> float
val complement : t -> t
