module Graph = Tb_graph.Graph
module Traversal = Tb_graph.Traversal

(* Expanding-region cuts (Appendix C): for every origin node, take the
   BFS balls of radius k = 0, 1, ... as cut subsets — at most n * diam
   cuts. Catches clustered networks whose bottleneck separates whole
   regions. *)

let iter g f =
  let n = Graph.num_nodes g in
  let cut = Array.make n false in
  for origin = 0 to n - 1 do
    let dist = Traversal.bfs_dist g origin in
    let ecc = Array.fold_left max 0 dist in
    for radius = 0 to ecc - 1 do
      for v = 0 to n - 1 do
        cut.(v) <- dist.(v) >= 0 && dist.(v) <= radius
      done;
      if Cut.is_proper cut then f cut
    done
  done

let sparsest g flows =
  let best = ref infinity and best_cut = ref None in
  iter g (fun cut ->
      let s = Cut.sparsity g flows cut in
      if s < !best then begin
        best := s;
        best_cut := Some (Array.copy cut)
      end);
  (!best, !best_cut)
