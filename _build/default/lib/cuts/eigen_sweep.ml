module Graph = Tb_graph.Graph
module Spectral = Tb_graph.Spectral

(* Eigenvector sweep cuts (Appendix C, after Chung [9]): sort nodes by
   their coordinate in the second eigenvector of the normalized
   Laplacian, then evaluate every prefix of that order as a cut. Cheeger
   theory guarantees one of these n - 1 cuts is within a quadratic
   factor of the true conductance; in the paper's study this estimator
   found the most sparse cuts by far (Table II). *)

let iter g f =
  let n = Graph.num_nodes g in
  if n >= 2 then begin
    let order = Spectral.sweep_order g in
    let cut = Array.make n false in
    for i = 0 to n - 2 do
      cut.(order.(i)) <- true;
      f cut
    done
  end

let sparsest g flows =
  let best = ref infinity and best_cut = ref None in
  iter g (fun cut ->
      let s = Cut.sparsity g flows cut in
      if s < !best then begin
        best := s;
        best_cut := Some (Array.copy cut)
      end);
  (!best, !best_cut)
