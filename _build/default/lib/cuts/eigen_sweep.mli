(** Eigenvector sweep cuts (Appendix C, after Chung): prefixes of the
    second-eigenvector node order — the estimator that found most sparse
    cuts in the paper's Table II. *)

module Graph = Tb_graph.Graph

val iter : Graph.t -> (Cut.t -> unit) -> unit
val sparsest : Graph.t -> (int * int * float) array -> float * Cut.t option
