(** Bisection bandwidth: minimum capacity over balanced bipartitions.
    Exact by enumeration on small graphs; spectral seed + Kernighan–Lin
    refinement otherwise. *)

module Graph = Tb_graph.Graph
module Rng = Tb_prelude.Rng

(** Exhaustive minimum balanced cut; raises on graphs above ~24 nodes. *)
val exact : Graph.t -> float * Cut.t option

(** One KL pass: returns the (possibly) improved cut and whether it
    improved. *)
val kl_pass : Graph.t -> Cut.t -> Cut.t * bool

(** Iterated KL until no pass improves (bounded rounds). *)
val kl_refine : Graph.t -> Cut.t -> Cut.t

(** Balanced cut at the spectral sweep order's midpoint. *)
val spectral_balanced : Graph.t -> Cut.t

val random_balanced : Rng.t -> int -> Cut.t

(** Bisection bandwidth estimate (capacity units). *)
val bandwidth : ?rng:Rng.t -> ?restarts:int -> Graph.t -> float

(** Bisection bandwidth used as a throughput bound for a TM: capacity of
    the best bisection over the larger directional demand crossing it. *)
val as_throughput_bound :
  ?rng:Rng.t -> ?restarts:int -> Graph.t -> (int * int * float) array -> float
