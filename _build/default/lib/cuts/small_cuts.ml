module Graph = Tb_graph.Graph

(* One- and two-node cuts (Appendix C): networks that are dense in the
   core and sparse at the edge often bottleneck right at the fringe,
   which these O(n) and O(n^2) families catch. *)

let iter_one_node g f =
  let n = Graph.num_nodes g in
  let cut = Array.make n false in
  for v = 0 to n - 1 do
    cut.(v) <- true;
    f cut;
    cut.(v) <- false
  done

let iter_two_node g f =
  let n = Graph.num_nodes g in
  let cut = Array.make n false in
  for u = 0 to n - 1 do
    cut.(u) <- true;
    for v = u + 1 to n - 1 do
      cut.(v) <- true;
      f cut;
      cut.(v) <- false
    done;
    cut.(u) <- false
  done

let best iter_fn g flows =
  let best = ref infinity and best_cut = ref None in
  iter_fn g (fun cut ->
      if Cut.is_proper cut then begin
        let s = Cut.sparsity g flows cut in
        if s < !best then begin
          best := s;
          best_cut := Some (Array.copy cut)
        end
      end);
  (!best, !best_cut)

let sparsest_one_node g flows = best iter_one_node g flows
let sparsest_two_node g flows = best iter_two_node g flows
