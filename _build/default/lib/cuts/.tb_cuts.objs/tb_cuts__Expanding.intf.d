lib/cuts/expanding.mli: Cut Tb_graph
