lib/cuts/cut.ml: Array List Tb_graph Tb_tm
