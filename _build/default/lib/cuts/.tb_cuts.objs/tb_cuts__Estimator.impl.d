lib/cuts/estimator.ml: Brute Eigen_sweep Expanding List Small_cuts Tb_graph Tb_tm
