lib/cuts/small_cuts.mli: Cut Tb_graph
