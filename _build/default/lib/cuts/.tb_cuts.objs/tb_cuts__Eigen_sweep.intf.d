lib/cuts/eigen_sweep.mli: Cut Tb_graph
