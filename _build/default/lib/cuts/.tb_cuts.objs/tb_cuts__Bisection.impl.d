lib/cuts/bisection.ml: Array Cut Hashtbl List Option Tb_graph Tb_prelude
