lib/cuts/eigen_sweep.ml: Array Cut Tb_graph
