lib/cuts/brute.ml: Array Cut Tb_graph
