lib/cuts/bisection.mli: Cut Tb_graph Tb_prelude
