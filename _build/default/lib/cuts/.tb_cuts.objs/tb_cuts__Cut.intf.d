lib/cuts/cut.mli: Tb_graph Tb_tm
