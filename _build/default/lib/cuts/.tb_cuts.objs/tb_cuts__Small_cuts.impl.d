lib/cuts/small_cuts.ml: Array Cut Tb_graph
