lib/cuts/expanding.ml: Array Cut Tb_graph
