lib/cuts/brute.mli: Cut Tb_graph
