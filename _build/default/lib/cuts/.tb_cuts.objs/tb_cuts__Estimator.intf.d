lib/cuts/estimator.mli: Tb_graph Tb_tm
