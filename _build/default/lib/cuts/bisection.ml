module Graph = Tb_graph.Graph
module Spectral = Tb_graph.Spectral
module Rng = Tb_prelude.Rng

(* Bisection bandwidth: the minimum capacity over cuts splitting the
   nodes into two equal halves (n even; for odd n the halves differ by
   one). Exact for small n via enumeration; otherwise the best of
   (a) the spectral order's balanced point and (b) Kernighan-Lin local
   search from random balanced seeds. *)

let capacity_of_balanced g cut = Cut.capacity g cut

(* Exhaustive over balanced cuts; n <= ~22 is practical. *)
let exact g =
  let n = Graph.num_nodes g in
  if n < 2 then invalid_arg "Bisection.exact";
  if n > 24 then invalid_arg "Bisection.exact: too large";
  let half = n / 2 in
  let best = ref infinity and best_cut = ref None in
  let cut = Array.make n false in
  (* Enumerate subsets of size [half] containing node 0 (kills the
     complement symmetry when n is even; for odd n both sizes are
     covered by the complement anyway). *)
  let rec go v chosen =
    if chosen = half then begin
      let c = capacity_of_balanced g cut in
      if c < !best then begin
        best := c;
        best_cut := Some (Array.copy cut)
      end
    end
    else if v < n && n - v >= half - chosen then begin
      cut.(v) <- true;
      go (v + 1) (chosen + 1);
      cut.(v) <- false;
      go (v + 1) chosen
    end
  in
  cut.(0) <- true;
  go 1 1;
  (!best, !best_cut)

(* One Kernighan-Lin refinement pass: greedily swap the pair with the
   best gain, lock both, repeat; keep the best prefix of the swap
   sequence. Returns the improved cut and whether it improved. *)
let kl_pass g cut =
  let n = Graph.num_nodes g in
  let cur = Array.copy cut in
  (* d.(v) = external cost - internal cost of v under [cur]. *)
  let d = Array.make n 0.0 in
  let recompute_d () =
    Array.fill d 0 n 0.0;
    Graph.iter_edges
      (fun _ e ->
        let u = e.Graph.u and v = e.Graph.v and c = e.Graph.cap in
        if cur.(u) <> cur.(v) then begin
          d.(u) <- d.(u) +. c;
          d.(v) <- d.(v) +. c
        end
        else begin
          d.(u) <- d.(u) -. c;
          d.(v) <- d.(v) -. c
        end)
      g
  in
  let locked = Array.make n false in
  let edge_cap = Hashtbl.create (Graph.num_edges g) in
  Graph.iter_edges
    (fun _ e ->
      Hashtbl.replace edge_cap (min e.Graph.u e.Graph.v, max e.Graph.u e.Graph.v)
        e.Graph.cap)
    g;
  let cap_between u v =
    Option.value ~default:0.0
      (Hashtbl.find_opt edge_cap (min u v, max u v))
  in
  let swaps = ref [] in
  let gain_sum = ref 0.0 in
  let best_prefix_gain = ref 0.0 and best_prefix_len = ref 0 in
  let steps = Graph.num_nodes g / 2 in
  recompute_d ();
  (try
     for step = 1 to steps do
       (* Best unlocked cross pair. *)
       let best_gain = ref neg_infinity and best_pair = ref None in
       for u = 0 to n - 1 do
         if (not locked.(u)) && cur.(u) then
           for v = 0 to n - 1 do
             if (not locked.(v)) && not cur.(v) then begin
               let gain = d.(u) +. d.(v) -. (2.0 *. cap_between u v) in
               if gain > !best_gain then begin
                 best_gain := gain;
                 best_pair := Some (u, v)
               end
             end
           done
       done;
       match !best_pair with
       | None -> raise Exit
       | Some (u, v) ->
         locked.(u) <- true;
         locked.(v) <- true;
         cur.(u) <- false;
         cur.(v) <- true;
         recompute_d ();
         swaps := (u, v) :: !swaps;
         gain_sum := !gain_sum +. !best_gain;
         if !gain_sum > !best_prefix_gain then begin
           best_prefix_gain := !gain_sum;
           best_prefix_len := step
         end
     done
   with Exit -> ());
  if !best_prefix_gain <= 1e-12 then (Array.copy cut, false)
  else begin
    (* Rebuild: apply only the best prefix of swaps. *)
    let out = Array.copy cut in
    let seq = List.rev !swaps in
    List.iteri
      (fun i (u, v) ->
        if i < !best_prefix_len then begin
          out.(u) <- false;
          out.(v) <- true
        end)
      seq;
    (out, true)
  end

let kl_refine g cut =
  let rec go cut rounds =
    if rounds = 0 then cut
    else begin
      let cut', improved = kl_pass g cut in
      if improved then go cut' (rounds - 1) else cut'
    end
  in
  go cut 16

(* Balanced cut from the spectral sweep order. *)
let spectral_balanced g =
  let n = Graph.num_nodes g in
  let order = Spectral.sweep_order g in
  let cut = Array.make n false in
  for i = 0 to (n / 2) - 1 do
    cut.(order.(i)) <- true
  done;
  cut

let random_balanced rng n =
  let idx = Rng.sample_without_replacement rng ~n ~k:(n / 2) in
  let cut = Array.make n false in
  Array.iter (fun v -> cut.(v) <- true) idx;
  cut

(* Bisection bandwidth estimate: exact when affordable, otherwise
   best-of spectral + KL from a few random restarts. *)
let bandwidth ?(rng = Rng.default ()) ?(restarts = 4) g =
  let n = Graph.num_nodes g in
  if n <= 20 then fst (exact g)
  else begin
    let candidates =
      spectral_balanced g
      :: List.init restarts (fun i ->
             random_balanced (Rng.split rng i) n)
    in
    List.fold_left
      (fun acc cut ->
        let refined = kl_refine g cut in
        min acc (Cut.capacity g refined))
      infinity candidates
  end

(* The paper-style normalized form: bisection capacity as a throughput
   bound for a TM, i.e. capacity over the larger directional demand
   crossing the best bisection. We report the bound of the best
   *capacity* bisection, which is how bisection bandwidth gets (mis)used
   as a proxy. *)
let as_throughput_bound ?rng ?restarts g flows =
  let n = Graph.num_nodes g in
  let cut =
    if n <= 20 then
      match exact g with
      | _, Some c -> c
      | _, None -> invalid_arg "Bisection.as_throughput_bound"
    else begin
      let candidates =
        spectral_balanced g
        :: List.init
             (Option.value ~default:4 restarts)
             (fun i ->
               random_balanced
                 (Rng.split (Option.value ~default:(Rng.default ()) rng) i)
                 n)
      in
      let best =
        List.fold_left
          (fun (bc, bcap) cand ->
            let refined = kl_refine g cand in
            let c = Cut.capacity g refined in
            if c < bcap then (refined, c) else (bc, bcap))
          (Array.make n false, infinity)
          candidates
      in
      fst best
    end
  in
  let fwd, bwd = Cut.demand_across flows cut in
  let dem = max fwd bwd in
  if dem <= 0.0 then infinity else Cut.capacity g cut /. dem
