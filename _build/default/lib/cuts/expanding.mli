(** Expanding-region cuts (Appendix C): BFS balls of every radius around
    every origin — at most n * diameter cuts; catches clustered
    bottlenecks. *)

module Graph = Tb_graph.Graph

val iter : Graph.t -> (Cut.t -> unit) -> unit
val sparsest : Graph.t -> (int * int * float) array -> float * Cut.t option
