(** One- and two-node cuts (Appendix C) — cheap families that catch
    fringe bottlenecks in core-dense, edge-sparse networks. *)

module Graph = Tb_graph.Graph

val iter_one_node : Graph.t -> (Cut.t -> unit) -> unit
val iter_two_node : Graph.t -> (Cut.t -> unit) -> unit

val sparsest_one_node :
  Graph.t -> (int * int * float) array -> float * Cut.t option

val sparsest_two_node :
  Graph.t -> (int * int * float) array -> float * Cut.t option
