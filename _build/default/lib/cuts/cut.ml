module Graph = Tb_graph.Graph

(* Cuts and their sparsity.

   A cut is a node subset S (bool per node). Its sparsity under a TM is
   the valid throughput upper bound it induces: undirected capacity
   across the cut divided by the larger directional demand across it
   (both directions must fit through the same undirected capacity, one
   per arc direction, so the max is the binding one):

       sparsity(S) = cap(S) / max(dem(S -> ~S), dem(~S -> S)).

   With the uniform all-to-all TM this reduces (up to the paper's
   normalization) to the classic uniform sparsest cut. *)

type t = bool array

let of_list ~n nodes =
  let s = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Cut.of_list";
      s.(v) <- true)
    nodes;
  s

let size cut = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 cut

let is_proper cut =
  let k = size cut in
  k > 0 && k < Array.length cut

let capacity g cut =
  Graph.fold_edges
    (fun acc _ e ->
      if cut.(e.Graph.u) <> cut.(e.Graph.v) then acc +. e.Graph.cap else acc)
    0.0 g

(* (demand S->~S, demand ~S->S) for a flow list. *)
let demand_across flows cut =
  Array.fold_left
    (fun (fwd, bwd) (u, v, w) ->
      if cut.(u) && not cut.(v) then (fwd +. w, bwd)
      else if cut.(v) && not cut.(u) then (fwd, bwd +. w)
      else (fwd, bwd))
    (0.0, 0.0) flows

let sparsity g flows cut =
  if not (is_proper cut) then invalid_arg "Cut.sparsity: improper cut";
  let fwd, bwd = demand_across flows cut in
  let dem = max fwd bwd in
  if dem <= 0.0 then infinity else capacity g cut /. dem

(* Sparsity under the TM type. *)
let sparsity_tm g tm cut = sparsity g (Tb_tm.Tm.flows tm) cut

let complement cut = Array.map not cut
