(** Immutable undirected graphs with edge capacities.

    Nodes are [0, n). Each undirected edge [e = (u, v, cap)] induces two
    directed arcs of the same capacity: arc [2e] = [u -> v] and arc
    [2e+1] = [v -> u]. Flow algorithms operate on arcs; topology and cut
    code on undirected edges. Graphs are simple (no self-loops or
    parallel edges). *)

type edge = { u : int; v : int; cap : float }
type t

val num_nodes : t -> int
val num_edges : t -> int

(** [num_arcs g = 2 * num_edges g]. *)
val num_arcs : t -> int

val edges : t -> edge array
val edge : t -> int -> edge
val arc_cap : t -> int -> float

(** [(src, dst)] of a directed arc. *)
val arc_endpoints : t -> int -> int * int

val arc_dst : t -> int -> int
val arc_src : t -> int -> int

(** The arc in the opposite direction over the same undirected edge. *)
val arc_rev : int -> int

(** [succ g u] lists [(neighbor, outgoing_arc_id)] pairs. *)
val succ : t -> int -> (int * int) array

val degree : t -> int -> int
val degree_sequence : t -> int array

(** Total capacity counted over directed arcs (2x undirected sum), i.e.,
    the paper's "total link capacity" over uni-directional links. *)
val total_capacity : t -> float

(** Build from an undirected edge list. Raises [Invalid_argument] on
    self-loops, out-of-range nodes, non-positive capacities, or parallel
    edges. *)
val of_edges : n:int -> (int * int * float) list -> t

(** [of_edges] with every capacity 1. *)
val of_unit_edges : n:int -> (int * int) list -> t

val has_edge : t -> int -> int -> bool
val iter_edges : (int -> edge -> unit) -> t -> unit
val fold_edges : ('a -> int -> edge -> 'a) -> 'a -> t -> 'a

(** Copy of the graph with all capacities set to [c]. *)
val with_uniform_capacity : t -> float -> t

val pp : Format.formatter -> t -> unit
