(** Descriptive structural metrics for topology reports (degree stats,
    diameter, clustering, spectral expansion). These are exactly the
    proxies the paper shows do {e not} determine throughput. *)

type summary = {
  nodes : int;
  edges : int;
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  diameter : int;
  mean_distance : float;
  global_clustering : float;
  algebraic_connectivity : float;
      (** lambda_2 of the normalized Laplacian; larger = better expander *)
}

(** Global clustering coefficient: 3 * triangles / connected triads. *)
val global_clustering : Graph.t -> float

(** Raises [Invalid_argument] on disconnected graphs (diameter). *)
val summarize : Graph.t -> summary

val pp : Format.formatter -> summary -> unit
