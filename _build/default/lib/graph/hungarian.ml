(* Hungarian algorithm (Kuhn-Munkres with potentials), O(n^3).

   The longest-matching traffic matrix is the maximum-weight perfect
   matching of the complete bipartite graph whose edge (u, v) weighs the
   shortest-path length u -> v; this module solves that assignment
   problem exactly.

   The implementation is the classic potentials formulation: rows are
   inserted one at a time, growing an alternating tree of tight edges,
   with dual updates chosen as the minimum reduced cost to a free
   column. *)

(* Minimize total cost over perfect assignments. [cost] must be square.
   Returns [assign] with [assign.(row) = col]. *)
let minimize cost =
  let n = Array.length cost in
  if n = 0 then [||]
  else begin
    Array.iter
      (fun row ->
        if Array.length row <> n then invalid_arg "Hungarian.minimize: ragged")
      cost;
    (* 1-indexed arrays; index 0 is the virtual root column. *)
    let u = Array.make (n + 1) 0.0 in
    let v = Array.make (n + 1) 0.0 in
    let p = Array.make (n + 1) 0 in
    (* way.(j): previous column on the alternating path reaching j. *)
    let way = Array.make (n + 1) 0 in
    for i = 1 to n do
      p.(0) <- i;
      let j0 = ref 0 in
      let minv = Array.make (n + 1) infinity in
      let used = Array.make (n + 1) false in
      let finished = ref false in
      while not !finished do
        used.(!j0) <- true;
        let i0 = p.(!j0) in
        let delta = ref infinity in
        let j1 = ref (-1) in
        for j = 1 to n do
          if not used.(j) then begin
            let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
            if cur < minv.(j) then begin
              minv.(j) <- cur;
              way.(j) <- !j0
            end;
            if minv.(j) < !delta then begin
              delta := minv.(j);
              j1 := j
            end
          end
        done;
        for j = 0 to n do
          if used.(j) then begin
            u.(p.(j)) <- u.(p.(j)) +. !delta;
            v.(j) <- v.(j) -. !delta
          end
          else minv.(j) <- minv.(j) -. !delta
        done;
        j0 := !j1;
        if p.(!j0) = 0 then finished := true
      done;
      (* Augment along the alternating path back to the root. *)
      let rec augment j =
        let jprev = way.(j) in
        p.(j) <- p.(jprev);
        if jprev <> 0 then augment jprev
      in
      augment !j0
    done;
    let assign = Array.make n (-1) in
    for j = 1 to n do
      if p.(j) > 0 then assign.(p.(j) - 1) <- j - 1
    done;
    assign
  end

(* Maximize total weight: minimize the negated matrix. *)
let maximize weight =
  minimize (Array.map (Array.map (fun w -> -.w)) weight)

let total_weight weight assign =
  let s = ref 0.0 in
  Array.iteri (fun i j -> s := !s +. weight.(i).(j)) assign;
  !s
