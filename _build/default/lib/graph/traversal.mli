(** Unweighted graph traversals. *)

(** Hop distances from [src]; unreachable nodes get [-1]. *)
val bfs_dist : Graph.t -> int -> int array

val is_connected : Graph.t -> bool

(** All-pairs hop distances, [apsp g].(u).(v). O(n*m). *)
val apsp : Graph.t -> int array array

val eccentricity : Graph.t -> int -> int

(** Raises [Invalid_argument] if the graph is disconnected. *)
val diameter : Graph.t -> int

(** Mean hop distance over ordered distinct pairs; raises on
    disconnected input. *)
val mean_distance : Graph.t -> float

(** [(k, comp)] where [k] is the number of connected components and
    [comp.(u)] the component id of [u]. *)
val components : Graph.t -> int * int array
