(* Graphviz export, handy for eyeballing small topologies. *)

let to_dot ?(name = "g") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Graph.iter_edges
    (fun _ e ->
      Buffer.add_string buf
        (if e.Graph.cap = 1.0 then
           Printf.sprintf "  %d -- %d;\n" e.Graph.u e.Graph.v
         else
           Printf.sprintf "  %d -- %d [label=\"%.2f\"];\n" e.Graph.u e.Graph.v
             e.Graph.cap))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_dot ?name g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?name g))
