(** Graphviz export for eyeballing small topologies. *)

val to_dot : ?name:string -> Graph.t -> string
val write_dot : ?name:string -> Graph.t -> string -> unit
