(** Exact assignment problem (Kuhn–Munkres with potentials), O(n³). *)

(** [minimize cost] returns [assign] with [assign.(row) = col], minimizing
    the total cost over perfect assignments of the square matrix. *)
val minimize : float array array -> int array

(** [maximize weight]: same, maximizing total weight. *)
val maximize : float array array -> int array

(** Total weight of an assignment under a weight matrix. *)
val total_weight : float array array -> int array -> float
