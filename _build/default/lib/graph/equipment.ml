(* "Same equipment" random graphs.

   The paper's normalization builds, for every evaluated network, a
   uniform-random graph with exactly the same equipment: the same number
   of nodes and the same number of ports (degree) per node. This module
   implements that construction: a configuration-model matching with
   local repair to keep the graph simple, followed by degree-preserving
   double-edge swaps to restore connectivity. The same machinery also
   provides Jellyfish (random regular) graphs. *)

exception Infeasible of string

(* Build a random simple graph with the exact degree sequence [deg].
   Raises [Infeasible] if the sequence is odd-summed or a node demands
   more distinct neighbors than exist. *)
let random_with_degrees ?(max_attempts = 200) rng deg =
  let n = Array.length deg in
  let total = Array.fold_left ( + ) 0 deg in
  if total mod 2 <> 0 then raise (Infeasible "odd degree sum");
  Array.iteri
    (fun i d ->
      if d < 0 then raise (Infeasible "negative degree");
      if d > n - 1 then
        raise (Infeasible (Printf.sprintf "degree %d at node %d > n-1" d i)))
    deg;
  let edge_key u v = if u < v then (u * n) + v else (v * n) + u in
  let attempt () =
    let edges = Hashtbl.create (total / 2 * 2) in
    let add u v = Hashtbl.replace edges (edge_key u v) (min u v, max u v) in
    let mem u v = Hashtbl.mem edges (edge_key u v) in
    let remove u v = Hashtbl.remove edges (edge_key u v) in
    (* Remaining stubs as a compactable array. *)
    let stubs = Array.make total 0 in
    let k = ref 0 in
    Array.iteri
      (fun i d ->
        for _ = 1 to d do
          stubs.(!k) <- i;
          incr k
        done)
      deg;
    let len = ref total in
    let remove_stub pos =
      stubs.(pos) <- stubs.(!len - 1);
      decr len
    in
    let stuck = ref 0 in
    let failed = ref false in
    while !len > 0 && not !failed do
      if !len = 1 then failed := true
      else begin
        let i = Tb_prelude.Rng.int rng !len in
        let j = ref (Tb_prelude.Rng.int rng !len) in
        while !j = i do
          j := Tb_prelude.Rng.int rng !len
        done;
        let u = stubs.(i) and v = stubs.(!j) in
        if u <> v && not (mem u v) then begin
          add u v;
          (* Remove the higher index first so the lower stays valid. *)
          remove_stub (max i !j);
          remove_stub (min i !j);
          stuck := 0
        end
        else begin
          incr stuck;
          if !stuck > 50 + (4 * !len) then begin
            (* Break an existing random edge (a, b) to absorb the stuck
               pair: (u,v)+(a,b) -> (u,a)+(v,b). *)
            let candidates =
              Hashtbl.fold (fun _ e acc -> e :: acc) edges []
            in
            let rec try_break tries =
              if tries = 0 then failed := true
              else begin
                let a, b =
                  List.nth candidates
                    (Tb_prelude.Rng.int rng (List.length candidates))
                in
                if
                  u <> a && v <> b && u <> b && v <> a
                  && (not (mem u a))
                  && not (mem v b)
                then begin
                  remove a b;
                  add u a;
                  add v b;
                  remove_stub (max i !j);
                  remove_stub (min i !j);
                  stuck := 0
                end
                else try_break (tries - 1)
              end
            in
            if candidates = [] then failed := true else try_break 100
          end
        end
      end
    done;
    if !failed then None
    else Some (Hashtbl.fold (fun _ (u, v) acc -> (u, v) :: acc) edges [])
  in
  let rec go k =
    if k = 0 then raise (Infeasible "could not realize degree sequence")
    else
      match attempt () with Some e -> e | None -> go (k - 1)
  in
  go max_attempts

(* Degree-preserving double-edge swaps until the graph is connected.
   Nodes of degree 0 are tolerated (they stay isolated; the throughput
   code never produces them for real topologies). *)
let connect_by_swaps ?(max_swaps = 100_000) rng ~n edge_list =
  let module H = Hashtbl in
  let edges = H.create (List.length edge_list * 2) in
  let key u v = if u < v then (u * n) + v else (v * n) + u in
  List.iter (fun (u, v) -> H.replace edges (key u v) (min u v, max u v)) edge_list;
  let mem u v = H.mem edges (key u v) in
  let current () = H.fold (fun _ e acc -> e :: acc) edges [] in
  let swaps = ref 0 in
  let rec loop () =
    let es = current () in
    let g = Graph.of_unit_edges ~n es in
    let _, comp = Traversal.components g in
    (* Only components containing edges can (and need to) be merged;
       degree-0 nodes stay isolated by construction. *)
    let seen = Hashtbl.create 8 in
    List.iter (fun (u, _) -> Hashtbl.replace seen comp.(u) ()) es;
    let live_components = Hashtbl.length seen in
    if live_components <= 1 then es
    else begin
      let arr = Array.of_list es in
      if Array.length arr < 2 then es
      else begin
        let (a, b) = arr.(Tb_prelude.Rng.int rng (Array.length arr)) in
        let (c, d) = arr.(Tb_prelude.Rng.int rng (Array.length arr)) in
        if
          comp.(a) <> comp.(c)
          && a <> c && a <> d && b <> c && b <> d
          && (not (mem a c))
          && not (mem b d)
        then begin
          H.remove edges (key a b);
          H.remove edges (key c d);
          H.replace edges (key a c) (min a c, max a c);
          H.replace edges (key b d) (min b d, max b d)
        end;
        incr swaps;
        if !swaps > max_swaps then
          raise (Infeasible "could not connect by swaps")
        else loop ()
      end
    end
  in
  loop ()

(* Random connected simple graph with the given degree sequence. *)
let random_connected_with_degrees rng deg =
  let n = Array.length deg in
  let edge_list = random_with_degrees rng deg in
  let edge_list = connect_by_swaps rng ~n edge_list in
  Graph.of_unit_edges ~n edge_list

(* The paper's normalizer: a random graph with exactly the same
   equipment (node count and per-node degree) as [g]. *)
let same_equipment_random rng g =
  random_connected_with_degrees rng (Graph.degree_sequence g)

(* Jellyfish: random r-regular graph on n switches. *)
let random_regular rng ~n ~degree =
  if degree >= n then raise (Infeasible "degree >= n");
  if n * degree mod 2 <> 0 then raise (Infeasible "odd n*degree");
  random_connected_with_degrees rng (Array.make n degree)
