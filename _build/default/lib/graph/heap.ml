(* Binary min-heap over (float priority, int payload), the hot data
   structure inside Dijkstra. Lazy deletion: stale entries are skipped by
   the caller via a best-known-distance check, so no decrease-key is
   needed. *)

type t = {
  mutable prio : float array;
  mutable data : int array;
  mutable size : int;
}

let create ?(capacity = 16) () =
  { prio = Array.make capacity 0.0; data = Array.make capacity 0; size = 0 }

let is_empty h = h.size = 0
let size h = h.size

let clear h = h.size <- 0

let grow h =
  let c = Array.length h.prio in
  let prio = Array.make (2 * c) 0.0 and data = Array.make (2 * c) 0 in
  Array.blit h.prio 0 prio 0 h.size;
  Array.blit h.data 0 data 0 h.size;
  h.prio <- prio;
  h.data <- data

let push h p x =
  if h.size = Array.length h.prio then grow h;
  let i = ref h.size in
  h.size <- h.size + 1;
  h.prio.(!i) <- p;
  h.data.(!i) <- x;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if h.prio.(parent) > h.prio.(!i) then begin
      let pp = h.prio.(parent) and pd = h.data.(parent) in
      h.prio.(parent) <- h.prio.(!i);
      h.data.(parent) <- h.data.(!i);
      h.prio.(!i) <- pp;
      h.data.(!i) <- pd;
      i := parent
    end
    else continue := false
  done

let pop h =
  if h.size = 0 then invalid_arg "Heap.pop: empty";
  let top_p = h.prio.(0) and top_d = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.prio.(0) <- h.prio.(h.size);
    h.data.(0) <- h.data.(h.size);
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.prio.(l) < h.prio.(!smallest) then smallest := l;
      if r < h.size && h.prio.(r) < h.prio.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let sp = h.prio.(!smallest) and sd = h.data.(!smallest) in
        h.prio.(!smallest) <- h.prio.(!i);
        h.data.(!smallest) <- h.data.(!i);
        h.prio.(!i) <- sp;
        h.data.(!i) <- sd;
        i := !smallest
      end
      else continue := false
    done
  end;
  (top_p, top_d)
