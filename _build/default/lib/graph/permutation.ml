(* Random permutations and derangement-style matchings over endpoints.

   A "random matching" traffic matrix pairs each sender with exactly one
   receiver; we exclude fixed points (a server sending to itself) and,
   when endpoints are grouped by switch, optionally exclude pairs that
   share a switch (such flows never enter the network). *)

let identity n = Array.init n (fun i -> i)

let random rng n =
  let p = identity n in
  Tb_prelude.Rng.shuffle_in_place rng p;
  p

let is_permutation p =
  let n = Array.length p in
  let seen = Array.make n false in
  Array.for_all
    (fun x ->
      x >= 0 && x < n
      &&
      if seen.(x) then false
      else begin
        seen.(x) <- true;
        true
      end)
    p

let inverse p =
  let n = Array.length p in
  let inv = Array.make n (-1) in
  Array.iteri (fun i x -> inv.(x) <- i) p;
  inv

(* Random permutation with no fixed point in the same group:
   [group.(i) = group.(p(i))] is forbidden. With group = identity this is
   a classic derangement. Rejection sampling with local repair: shuffle,
   then fix conflicting positions by swapping with a random other
   position; retry the scan until clean (expected O(1) rounds for the
   group sizes that arise here, i.e. servers-per-switch << n). *)
let derangement_avoiding ?(max_rounds = 10_000) rng ~group n =
  if n < 2 then invalid_arg "Permutation.derangement_avoiding: n < 2";
  let p = random rng n in
  let conflict i = group i = group p.(i) in
  let rounds = ref 0 in
  let dirty = ref true in
  while !dirty do
    incr rounds;
    if !rounds > max_rounds then
      failwith "Permutation.derangement_avoiding: no valid matching found";
    dirty := false;
    for i = 0 to n - 1 do
      if conflict i then begin
        let j = Tb_prelude.Rng.int rng n in
        (* Swapping targets of i and j never breaks j worse than i was;
           rescan catches any new conflict. *)
        let tmp = p.(i) in
        p.(i) <- p.(j);
        p.(j) <- tmp;
        dirty := true
      end
    done
  done;
  p

let derangement rng n = derangement_avoiding rng ~group:(fun i -> i) n
