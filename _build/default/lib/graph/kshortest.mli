(** Yen's algorithm for the K shortest loopless paths. *)

type path = { arcs : int list; nodes : int list; length : float }

(** Up to [k] loopless paths in increasing length order (fewer if the
    graph has fewer simple paths). *)
val k_shortest :
  Graph.t -> len:(int -> float) -> src:int -> dst:int -> k:int -> path list

(** Hop-count specialisation. *)
val k_shortest_hops : Graph.t -> src:int -> dst:int -> k:int -> path list
