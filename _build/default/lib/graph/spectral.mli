(** Second eigenvector of the normalized Laplacian via deflated power
    iteration on [2I - L] — the engine of the eigenvector-sweep cut
    heuristic. *)

(** Raises [Invalid_argument] on graphs with fewer than 2 nodes. *)
val second_eigenvector : ?iterations:int -> ?tol:float -> Graph.t -> float array

(** Rayleigh quotient [x' L x / x' x] of the normalized Laplacian;
    approximates lambda_2 on {!second_eigenvector}'s output. *)
val rayleigh_quotient : Graph.t -> float array -> float

(** Nodes ordered by their (degree-rescaled) second-eigenvector
    coordinate; sweep cuts are prefixes of this order. *)
val sweep_order : Graph.t -> int array
