(** Disjoint-set forest with path compression and union by rank. *)

type t

val create : int -> t
val find : t -> int -> int

(** [union t x y] merges the sets of [x] and [y]; returns [false] if they
    were already in the same set. *)
val union : t -> int -> int -> bool

val same : t -> int -> int -> bool

(** Current number of disjoint sets. *)
val components : t -> int
