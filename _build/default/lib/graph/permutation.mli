(** Random permutations, derangements, and group-avoiding matchings used
    to build random-matching traffic. *)

val identity : int -> int array
val random : Tb_prelude.Rng.t -> int -> int array
val is_permutation : int array -> bool
val inverse : int array -> int array

(** Random permutation [p] with [group i <> group (p i)] for all [i]
    (no sender is matched inside its own group). Fails only if no such
    permutation is found after many repair rounds — e.g. one group holds
    more than half the elements. *)
val derangement_avoiding :
  ?max_rounds:int -> Tb_prelude.Rng.t -> group:(int -> int) -> int -> int array

(** Random fixed-point-free permutation. *)
val derangement : Tb_prelude.Rng.t -> int -> int array
