(* Weighted single-source shortest paths.

   The multiplicative-weights flow solver calls Dijkstra millions of
   times with arc lengths it owns, so the entry point takes a length
   function indexed by *arc id* and supports reusable scratch state to
   avoid reallocation. *)

type state = {
  dist : float array;
  (* parent arc on the shortest path tree, -1 at the source/unreached. *)
  parent_arc : int array;
  heap : Heap.t;
  mutable stamp : int;
  visit_stamp : int array;
  settle_stamp : int array;
}

let create_state n =
  {
    dist = Array.make n infinity;
    parent_arc = Array.make n (-1);
    heap = Heap.create ~capacity:(max 16 n) ();
    stamp = 0;
    visit_stamp = Array.make n (-1);
    settle_stamp = Array.make n (-1);
  }

(* Run Dijkstra from [src] with arc lengths [len]; fills [st.dist] and
   [st.parent_arc]. Entries of nodes not reached in this run are
   identified by [st.visit_stamp.(v) <> st.stamp]. An optional [target]
   allows early exit once that node is settled. *)
let dijkstra ?target g ~len ~src st =
  let n = Graph.num_nodes g in
  if Array.length st.dist <> n then invalid_arg "Shortest_path.dijkstra: size";
  st.stamp <- st.stamp + 1;
  Heap.clear st.heap;
  st.dist.(src) <- 0.0;
  st.parent_arc.(src) <- -1;
  st.visit_stamp.(src) <- st.stamp;
  Heap.push st.heap 0.0 src;
  let finished = ref false in
  while (not !finished) && not (Heap.is_empty st.heap) do
    let d, u = Heap.pop st.heap in
    if st.settle_stamp.(u) <> st.stamp then begin
      st.settle_stamp.(u) <- st.stamp;
      (match target with Some t when t = u -> finished := true | _ -> ());
      if not !finished then
        Array.iter
          (fun (v, arc) ->
            if st.settle_stamp.(v) <> st.stamp then begin
              let w = len arc in
              if w < infinity then begin
                let nd = d +. w in
                let known =
                  st.visit_stamp.(v) = st.stamp && st.dist.(v) <= nd
                in
                if not known then begin
                  st.dist.(v) <- nd;
                  st.parent_arc.(v) <- arc;
                  st.visit_stamp.(v) <- st.stamp;
                  Heap.push st.heap nd v
                end
              end
            end)
          (Graph.succ g u)
    end
  done

let reached st v = st.visit_stamp.(v) = st.stamp

let distance st v = if reached st v then st.dist.(v) else infinity

(* Parent arc of [v] in the most recent tree (-1 at the source or when
   unreached); lets hot loops walk paths without allocating. *)
let parent_arc st v = if reached st v then st.parent_arc.(v) else -1

(* Arc ids along the path src -> v, in order. *)
let path_arcs g st v =
  if not (reached st v) then None
  else begin
    let rec collect v acc =
      match st.parent_arc.(v) with
      | -1 -> acc
      | arc -> collect (Graph.arc_src g arc) (arc :: acc)
    in
    Some (collect v [])
  end

(* One-shot convenience wrapper. *)
let dijkstra_dist g ~len ~src =
  let st = create_state (Graph.num_nodes g) in
  dijkstra g ~len ~src st;
  Array.init (Graph.num_nodes g) (fun v -> distance st v)

(* Shortest path as arc list, or None if unreachable. *)
let shortest_path g ~len ~src ~dst =
  let st = create_state (Graph.num_nodes g) in
  dijkstra ~target:dst g ~len ~src st;
  path_arcs g st dst
