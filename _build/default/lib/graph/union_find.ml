(* Disjoint sets with path compression and union by rank; used by the
   random-graph rewiring and connectivity checks. *)

type t = { parent : int array; rank : int array; mutable components : int }

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; components = n }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let r = find t p in
    t.parent.(x) <- r;
    r
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    t.components <- t.components - 1;
    if t.rank.(rx) < t.rank.(ry) then t.parent.(rx) <- ry
    else if t.rank.(rx) > t.rank.(ry) then t.parent.(ry) <- rx
    else begin
      t.parent.(ry) <- rx;
      t.rank.(rx) <- t.rank.(rx) + 1
    end;
    true
  end

let same t x y = find t x = find t y
let components t = t.components
