(* Second eigenvector of the normalized Laplacian (the "Fiedler-like"
   vector used by the eigenvector sweep cut heuristic, after Chung [9]).

   L has spectrum in [0, 2] with known kernel vector D^{1/2} 1. We power-
   iterate M = 2I - L (top eigenvalue 2, same eigenvectors) while
   deflating the kernel direction; the dominant remaining direction is
   the second eigenvector of L. *)

let second_eigenvector ?(iterations = 400) ?(tol = 1e-9) g =
  let n = Graph.num_nodes g in
  if n < 2 then invalid_arg "Spectral.second_eigenvector";
  let lap = Laplacian.create g in
  let kernel = Laplacian.kernel_vector lap in
  (* Deterministic start decorrelated from the kernel. *)
  let x = Array.init n (fun i -> sin (float_of_int (i + 1) *. 1.234567)) in
  let deflate v =
    let c = Tb_prelude.Vec.dot v kernel in
    Tb_prelude.Vec.axpy_in_place v (-.c) kernel
  in
  deflate x;
  Tb_prelude.Vec.normalize_in_place x;
  let y = Array.make n 0.0 in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < iterations do
    incr iter;
    Laplacian.apply lap x y;
    (* y := 2x - Lx *)
    for i = 0 to n - 1 do
      y.(i) <- (2.0 *. x.(i)) -. y.(i)
    done;
    deflate y;
    Tb_prelude.Vec.normalize_in_place y;
    let delta =
      min (Tb_prelude.Vec.linf_dist x y)
        (* Eigenvectors are sign-ambiguous; also compare against -y. *)
        (Tb_prelude.Vec.linf_dist x (Array.map (fun v -> -.v) y))
    in
    Array.blit y 0 x 0 n;
    if delta < tol then converged := true
  done;
  x

(* Rayleigh quotient x^T L x / x^T x of the normalized Laplacian:
   approximates lambda_2 when applied to [second_eigenvector]. *)
let rayleigh_quotient g x =
  let lap = Laplacian.create g in
  let y = Array.make (Array.length x) 0.0 in
  Laplacian.apply lap x y;
  Tb_prelude.Vec.dot x y /. Tb_prelude.Vec.dot x x

(* Order nodes by their second-eigenvector coordinate in the node-domain
   (scale back by D^{-1/2}); the sweep cuts are prefixes of this order. *)
let sweep_order g =
  let n = Graph.num_nodes g in
  let x = second_eigenvector g in
  let lap = Laplacian.create g in
  let score =
    Array.init n (fun i ->
        let d = Laplacian.weighted_degree lap i in
        if d > 0.0 then x.(i) /. sqrt d else x.(i))
  in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare score.(a) score.(b)) order;
  order
