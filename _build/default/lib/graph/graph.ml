(* Immutable undirected graphs with edge capacities, in a CSR-like layout.

   Conventions shared across the framework:
   - Nodes are [0, n).
   - Each undirected edge [e] with endpoints (u, v) and capacity [c]
     induces two directed arcs: arc [2e] = u->v and arc [2e+1] = v->u,
     each of capacity [c]. Flow algorithms work on arcs; topology and cut
     code works on undirected edges.
   - Simple graphs only: no self-loops, no parallel edges. Topology
     constructors are expected to deduplicate. *)

type edge = { u : int; v : int; cap : float }

type t = {
  n : int;
  edges : edge array;
  (* adj.(u) lists (neighbor, arc_id) with arc_id the u->neighbor arc. *)
  adj : (int * int) array array;
}

let num_nodes g = g.n
let num_edges g = Array.length g.edges
let num_arcs g = 2 * Array.length g.edges
let edges g = g.edges
let edge g e = g.edges.(e)

let arc_cap g a = g.edges.(a lsr 1).cap

let arc_endpoints g a =
  let e = g.edges.(a lsr 1) in
  if a land 1 = 0 then (e.u, e.v) else (e.v, e.u)

let arc_dst g a =
  let e = g.edges.(a lsr 1) in
  if a land 1 = 0 then e.v else e.u

let arc_src g a =
  let e = g.edges.(a lsr 1) in
  if a land 1 = 0 then e.u else e.v

(* The opposite-direction arc over the same undirected edge. *)
let arc_rev a = a lxor 1

let succ g u = g.adj.(u)

let degree g u = Array.length g.adj.(u)

let degree_sequence g = Array.init g.n (fun u -> degree g u)

let total_capacity g =
  (* Sum over directed arcs, i.e., 2x the undirected capacity: this is the
     "total link capacity" of the volumetric bound in the paper (it counts
     uni-directional links). *)
  2.0 *. Array.fold_left (fun acc e -> acc +. e.cap) 0.0 g.edges

let of_edges ~n edge_list =
  let seen = Hashtbl.create (List.length edge_list * 2) in
  let norm (u, v, c) =
    if u = v then invalid_arg "Graph.of_edges: self-loop";
    if u < 0 || v < 0 || u >= n || v >= n then
      invalid_arg "Graph.of_edges: node out of range";
    if c <= 0.0 then invalid_arg "Graph.of_edges: non-positive capacity";
    if u < v then (u, v, c) else (v, u, c)
  in
  let dedup =
    List.filter_map
      (fun e ->
        let u, v, c = norm e in
        if Hashtbl.mem seen (u, v) then
          invalid_arg "Graph.of_edges: parallel edge"
        else begin
          Hashtbl.add seen (u, v) ();
          Some { u; v; cap = c }
        end)
      edge_list
  in
  let edges = Array.of_list dedup in
  let deg = Array.make n 0 in
  Array.iter
    (fun e ->
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    edges;
  let adj = Array.init n (fun u -> Array.make deg.(u) (-1, -1)) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun i e ->
      adj.(e.u).(fill.(e.u)) <- (e.v, 2 * i);
      fill.(e.u) <- fill.(e.u) + 1;
      adj.(e.v).(fill.(e.v)) <- (e.u, (2 * i) + 1);
      fill.(e.v) <- fill.(e.v) + 1)
    edges;
  { n; edges; adj }

let of_unit_edges ~n pairs =
  of_edges ~n (List.map (fun (u, v) -> (u, v, 1.0)) pairs)

let has_edge g u v = Array.exists (fun (w, _) -> w = v) g.adj.(u)

let iter_edges f g = Array.iteri (fun i e -> f i e) g.edges

let fold_edges f acc g =
  let r = ref acc in
  Array.iteri (fun i e -> r := f !r i e) g.edges;
  !r

(* Re-cap every edge. Used to build unit-capacity views. *)
let with_uniform_capacity g c =
  {
    g with
    edges = Array.map (fun e -> { e with cap = c }) g.edges;
  }

let pp ppf g =
  Fmt.pf ppf "graph(n=%d, m=%d)" g.n (Array.length g.edges)
