(* Normalized Laplacian operator L = I - D^{-1/2} A D^{-1/2}, exposed as a
   matrix-vector product so the spectral cut heuristics never materialize
   an n x n matrix. Capacities act as edge weights. *)

type t = {
  graph : Graph.t;
  (* Weighted degree of each node. *)
  wdeg : float array;
  inv_sqrt_deg : float array;
}

let create g =
  let n = Graph.num_nodes g in
  let wdeg = Array.make n 0.0 in
  Graph.iter_edges
    (fun _ e ->
      wdeg.(e.Graph.u) <- wdeg.(e.Graph.u) +. e.Graph.cap;
      wdeg.(e.Graph.v) <- wdeg.(e.Graph.v) +. e.Graph.cap)
    g;
  let inv_sqrt_deg =
    Array.map (fun d -> if d > 0.0 then 1.0 /. sqrt d else 0.0) wdeg
  in
  { graph = g; wdeg; inv_sqrt_deg }

let weighted_degree t u = t.wdeg.(u)

(* y = L x  with  L = I - D^{-1/2} A D^{-1/2}. *)
let apply t x y =
  let n = Graph.num_nodes t.graph in
  if Array.length x <> n || Array.length y <> n then
    invalid_arg "Laplacian.apply";
  Array.blit x 0 y 0 n;
  Graph.iter_edges
    (fun _ e ->
      let u = e.Graph.u and v = e.Graph.v in
      let w = e.Graph.cap *. t.inv_sqrt_deg.(u) *. t.inv_sqrt_deg.(v) in
      y.(u) <- y.(u) -. (w *. x.(v));
      y.(v) <- y.(v) -. (w *. x.(u)))
    t.graph

(* The eigenvector of eigenvalue 0: D^{1/2} * 1, normalized. *)
let kernel_vector t =
  let v = Array.map sqrt t.wdeg in
  Tb_prelude.Vec.normalize_in_place v;
  v
