(* Yen's algorithm for the K shortest loopless paths, used to replicate
   the LLSKR routing scheme of Yuan et al. (Fig. 15 of the paper): each
   flow is split into subflows pinned to its K shortest paths. *)

type path = { arcs : int list; nodes : int list; length : float }

let path_of_arcs g ~len ~src arcs =
  let nodes, length =
    List.fold_left
      (fun (nodes, total) arc -> (Graph.arc_dst g arc :: nodes, total +. len arc))
      ([ src ], 0.0)
      arcs
  in
  { arcs; nodes = List.rev nodes; length }

(* Shortest path that avoids a set of banned arcs and banned nodes
   (bans are encoded by giving arcs infinite length). *)
let restricted_shortest g ~len ~banned_arcs ~banned_nodes ~src ~dst =
  let len' arc =
    if Hashtbl.mem banned_arcs arc then infinity
    else begin
      let dst_node = Graph.arc_dst g arc in
      if Hashtbl.mem banned_nodes dst_node then infinity else len arc
    end
  in
  Shortest_path.shortest_path g ~len:len' ~src ~dst

let k_shortest g ~len ~src ~dst ~k =
  if k <= 0 then []
  else
    match Shortest_path.shortest_path g ~len ~src ~dst with
    | None -> []
    | Some arcs0 ->
      let accepted = ref [ path_of_arcs g ~len ~src arcs0 ] in
      (* Candidate pool; small (k * path length entries), a sorted list
         is fine. *)
      let candidates : path list ref = ref [] in
      let path_key p = p.arcs in
      let have_candidate p =
        List.exists (fun q -> path_key q = path_key p) !candidates
        || List.exists (fun q -> path_key q = path_key p) !accepted
      in
      let finished = ref false in
      while (not !finished) && List.length !accepted < k do
        let prev = List.hd !accepted in
        let prev_nodes = Array.of_list prev.nodes in
        let prev_arcs = Array.of_list prev.arcs in
        (* Spur from every node of the newest accepted path except dst. *)
        for i = 0 to Array.length prev_arcs - 1 do
          let spur_node = prev_nodes.(i) in
          let root_arcs = Array.sub prev_arcs 0 i in
          let root_list = Array.to_list root_arcs in
          let banned_arcs = Hashtbl.create 8 in
          (* Ban the next arc of every known path sharing this root. *)
          let ban_if_shares p =
            let pa = Array.of_list p.arcs in
            if Array.length pa > i && Array.sub pa 0 i = root_arcs then
              Hashtbl.replace banned_arcs pa.(i) ()
          in
          List.iter ban_if_shares !accepted;
          List.iter ban_if_shares !candidates;
          let banned_nodes = Hashtbl.create 8 in
          for j = 0 to i - 1 do
            Hashtbl.replace banned_nodes prev_nodes.(j) ()
          done;
          match
            restricted_shortest g ~len ~banned_arcs ~banned_nodes
              ~src:spur_node ~dst
          with
          | None -> ()
          | Some spur_arcs ->
            let total = root_list @ spur_arcs in
            let p = path_of_arcs g ~len ~src total in
            if not (have_candidate p) then candidates := p :: !candidates
        done;
        match
          List.sort (fun a b -> compare a.length b.length) !candidates
        with
        | [] -> finished := true
        | best :: rest ->
          accepted := best :: !accepted;
          candidates := rest
      done;
      List.sort (fun a b -> compare a.length b.length) !accepted

(* Hop-count specialisation. *)
let k_shortest_hops g ~src ~dst ~k =
  k_shortest g ~len:(fun _ -> 1.0) ~src ~dst ~k
