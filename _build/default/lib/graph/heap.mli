(** Binary min-heap over [(float, int)] with lazy deletion (no
    decrease-key; callers skip stale pops). *)

type t

val create : ?capacity:int -> unit -> t
val is_empty : t -> bool
val size : t -> int

(** Reset to empty without releasing storage. *)
val clear : t -> unit

val push : t -> float -> int -> unit

(** Pop the minimum [(priority, payload)]. Raises on empty. *)
val pop : t -> float * int
