(** Normalized Laplacian [L = I - D^(-1/2) A D^(-1/2)] as a
    matrix-vector operator (never materialized). Capacities act as edge
    weights. *)

type t

val create : Graph.t -> t
val weighted_degree : t -> int -> float

(** [apply t x y]: [y <- L x]. *)
val apply : t -> float array -> float array -> unit

(** The unit eigenvector of eigenvalue 0: [D^(1/2) 1] normalized. *)
val kernel_vector : t -> float array
