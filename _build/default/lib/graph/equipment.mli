(** Degree-preserving random graphs: the "same equipment" normalizer of
    the paper and the Jellyfish (random regular) construction. *)

exception Infeasible of string

(** Random simple graph realizing the exact degree sequence, as an edge
    list. Raises {!Infeasible} on unrealizable sequences. *)
val random_with_degrees :
  ?max_attempts:int -> Tb_prelude.Rng.t -> int array -> (int * int) list

(** Degree-preserving double-edge swaps until all edges lie in one
    connected component. *)
val connect_by_swaps :
  ?max_swaps:int ->
  Tb_prelude.Rng.t ->
  n:int ->
  (int * int) list ->
  (int * int) list

(** Random connected simple graph with the given degree sequence. *)
val random_connected_with_degrees :
  Tb_prelude.Rng.t -> int array -> Graph.t

(** Random graph with exactly the same node count and per-node degrees
    as the input (the paper's relative-throughput baseline). *)
val same_equipment_random : Tb_prelude.Rng.t -> Graph.t -> Graph.t

(** Jellyfish switch fabric: a random [degree]-regular connected graph on
    [n] switches. *)
val random_regular : Tb_prelude.Rng.t -> n:int -> degree:int -> Graph.t
