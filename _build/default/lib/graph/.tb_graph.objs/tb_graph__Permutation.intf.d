lib/graph/permutation.mli: Tb_prelude
