lib/graph/hungarian.ml: Array
