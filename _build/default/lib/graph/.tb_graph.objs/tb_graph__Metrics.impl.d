lib/graph/metrics.ml: Array Fmt Graph Hashtbl Spectral Traversal
