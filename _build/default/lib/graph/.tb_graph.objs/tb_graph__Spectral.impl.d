lib/graph/spectral.ml: Array Graph Laplacian Tb_prelude
