lib/graph/shortest_path.ml: Array Graph Heap
