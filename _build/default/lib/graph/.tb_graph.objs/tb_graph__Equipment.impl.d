lib/graph/equipment.ml: Array Graph Hashtbl List Printf Tb_prelude Traversal
