lib/graph/laplacian.ml: Array Graph Tb_prelude
