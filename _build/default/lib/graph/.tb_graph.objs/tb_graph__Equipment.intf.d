lib/graph/equipment.mli: Graph Tb_prelude
