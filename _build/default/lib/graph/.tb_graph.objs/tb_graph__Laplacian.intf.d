lib/graph/laplacian.mli: Graph
