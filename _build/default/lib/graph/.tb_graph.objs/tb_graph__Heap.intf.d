lib/graph/heap.mli:
