lib/graph/hungarian.mli:
