lib/graph/permutation.ml: Array Tb_prelude
