lib/graph/kshortest.ml: Array Graph Hashtbl List Shortest_path
