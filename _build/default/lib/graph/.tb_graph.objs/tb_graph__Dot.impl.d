lib/graph/dot.ml: Buffer Fun Graph Printf
