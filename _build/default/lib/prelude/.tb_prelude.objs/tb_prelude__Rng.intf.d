lib/prelude/rng.mli:
