lib/prelude/vec.ml: Array
