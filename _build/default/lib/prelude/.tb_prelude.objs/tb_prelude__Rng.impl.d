lib/prelude/rng.ml: Array Random
