lib/prelude/table.mli:
