lib/prelude/parallel.mli:
