lib/prelude/parallel.ml: Array Domain
