lib/prelude/vec.mli:
