(** Deterministic, splittable random number generation.

    All randomized algorithms in the framework thread an explicit [t]
    so experiments replay exactly from a seed. *)

type t

(** [make seed] creates a generator from an integer seed. *)
val make : int -> t

(** The framework-wide default generator (seed 42). *)
val default : unit -> t

(** [split t i] derives an independent child stream; children with
    distinct [i] are decorrelated and safe to hand to parallel workers. *)
val split : t -> int -> t

(** [int t n] is uniform in [0, n). *)
val int : t -> int -> int

(** [float t x] is uniform in [0, x). *)
val float : t -> float -> float

val bool : t -> bool

(** [int_range t lo hi] is uniform in [lo, hi], inclusive. *)
val int_range : t -> int -> int -> int

(** In-place Fisher-Yates shuffle. *)
val shuffle_in_place : t -> 'a array -> unit

(** Functional shuffle: returns a shuffled copy. *)
val shuffle : t -> 'a array -> 'a array

(** [sample_without_replacement t ~n ~k] draws [k] distinct ints from
    [0, n). *)
val sample_without_replacement : t -> n:int -> k:int -> int array

(** Uniformly pick one element of a non-empty array. *)
val choose : t -> 'a array -> 'a
