(* Dense float-vector kernels for the spectral toolkit and LP solver.
   Plain float arrays keep everything unboxed. *)

let create n x = Array.make n x

let dot a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Vec.dot";
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let norm2 a = sqrt (dot a a)

let scale_in_place a c =
  for i = 0 to Array.length a - 1 do
    a.(i) <- a.(i) *. c
  done

(* a <- a + c*b *)
let axpy_in_place a c b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Vec.axpy_in_place";
  for i = 0 to n - 1 do
    a.(i) <- a.(i) +. (c *. b.(i))
  done

let normalize_in_place a =
  let n = norm2 a in
  if n > 0.0 then scale_in_place a (1.0 /. n)

let sub a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Vec.sub";
  Array.init n (fun i -> a.(i) -. b.(i))

let linf_dist a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Vec.linf_dist";
  let d = ref 0.0 in
  for i = 0 to n - 1 do
    let x = abs_float (a.(i) -. b.(i)) in
    if x > !d then d := x
  done;
  !d

let sum a = Array.fold_left ( +. ) 0.0 a
