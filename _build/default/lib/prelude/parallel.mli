(** Fork-join data parallelism over OCaml 5 domains, used to spread
    independent throughput computations across cores. *)

(** Number of worker domains used per call (at least 1). *)
val max_domains : int

(** Set to [false] to force sequential execution (useful in tests). *)
val enabled : bool ref

(** [map_array f a] is [Array.map f a] computed with up to [max_domains]
    domains. [f] must not share mutable state across elements. Respects
    {!enabled}. *)
val map_array : ('a -> 'b) -> 'a array -> 'b array

(** Like {!map_array} but ignores {!enabled} — for outer experiment
    loops that own the cores while inner solver maps run sequential. *)
val force_map_array : ('a -> 'b) -> 'a array -> 'b array

(** [init n f] is [Array.init n f] in parallel. *)
val init : int -> (int -> 'a) -> 'a array

(** Pointwise parallel map over two same-length arrays. *)
val map2_array : ('a -> 'b -> 'c) -> 'a array -> 'b array -> 'c array
