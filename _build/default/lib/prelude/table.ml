(* Aligned plain-text tables for the benchmark harness: every figure and
   table of the paper is regenerated as rows printed through this module,
   so the output is diffable and easy to plot externally. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  mutable rows : string list list; (* reverse order *)
}

let create ~title headers = { title; headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let cell_f x = Printf.sprintf "%.4f" x
let cell_i n = string_of_int n
let cell_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let render ?(align = Right) t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncol = List.length t.headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncol width in
  let pad w s =
    let k = w - String.length s in
    if k <= 0 then s
    else
      match align with
      | Right -> String.make k ' ' ^ s
      | Left -> s ^ String.make k ' '
  in
  let line row =
    String.concat "  " (List.map2 pad widths row)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("## " ^ t.title ^ "\n");
  Buffer.add_string buf (line t.headers ^ "\n");
  Buffer.add_string buf
    (String.concat "  " (List.map (fun w -> String.make w '-') widths) ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) rows;
  Buffer.contents buf

let print ?align t = print_string (render ?align t)
