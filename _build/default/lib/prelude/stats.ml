(* Small-sample statistics used when averaging throughput over topology
   instances. The paper reports means with 95% two-sided confidence
   intervals over 10 iterations; we reproduce that with a Student-t
   interval. *)

let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.mean";
  Array.fold_left ( +. ) 0.0 a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    ss /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let min_max a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.min_max";
  let lo = ref a.(0) and hi = ref a.(0) in
  for i = 1 to n - 1 do
    if a.(i) < !lo then lo := a.(i);
    if a.(i) > !hi then hi := a.(i)
  done;
  (!lo, !hi)

let median a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.median";
  let b = Array.copy a in
  Array.sort compare b;
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

(* Two-sided 95% Student-t critical values by degrees of freedom; the tail
   entry (large df) is the normal approximation. *)
let t_crit_95 =
  [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
     2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
     2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042 |]

let t_critical ~df =
  if df <= 0 then invalid_arg "Stats.t_critical";
  if df <= Array.length t_crit_95 then t_crit_95.(df - 1) else 1.96

type summary = { mean : float; ci95 : float; n : int }

let summarize a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.summarize";
  let m = mean a in
  let ci =
    if n < 2 then 0.0
    else t_critical ~df:(n - 1) *. stddev a /. sqrt (float_of_int n)
  in
  { mean = m; ci95 = ci; n }

let pp_summary ppf { mean; ci95; n = _ } =
  Fmt.pf ppf "%.4f ±%.4f" mean ci95
