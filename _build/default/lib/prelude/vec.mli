(** Dense float-vector kernels (unboxed float arrays). *)

val create : int -> float -> float array
val dot : float array -> float array -> float
val norm2 : float array -> float
val scale_in_place : float array -> float -> unit

(** [axpy_in_place a c b]: [a <- a + c * b]. *)
val axpy_in_place : float array -> float -> float array -> unit

val normalize_in_place : float array -> unit
val sub : float array -> float array -> float array
val linf_dist : float array -> float array -> float
val sum : float array -> float
