(** Aligned plain-text tables: every figure and table of the paper is
    regenerated as rows printed through this module, so benchmark output
    stays diffable and easy to plot externally. *)

type align = Left | Right
type t

val create : title:string -> string list -> t

(** Raises [Invalid_argument] if the row arity differs from the
    header's. *)
val add_row : t -> string list -> unit

val cell_f : float -> string
val cell_i : int -> string
val cell_pct : float -> string
val render : ?align:align -> t -> string
val print : ?align:align -> t -> unit
