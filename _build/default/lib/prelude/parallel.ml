(* Domain-based data parallelism for embarrassingly parallel experiment
   sweeps (one throughput computation per data point).

   A tiny fork-join map is all the framework needs: each call spawns up to
   [max_domains - 1] worker domains, statically splits the index range, and
   joins. Tasks must be pure or confined to their own state (the RNG is
   split per task upstream). *)

let max_domains =
  (* Leave one core for the orchestrating domain; cap to avoid
     oversubscription on large machines. *)
  let n = Domain.recommended_domain_count () in
  max 1 (min 8 (n - 1))

let enabled = ref true

(* [map_array f a] = Array.map f a, computed in parallel chunks.
   [gated] callers respect the [enabled] switch (the solver-level maps,
   which should go sequential when an outer loop already owns the
   cores); [force_map_array] always parallelizes. *)
let map_array_impl ~gated f a =
  let n = Array.length a in
  if n = 0 then [||]
  else if (gated && not !enabled) || n = 1 || max_domains = 1 then
    Array.map f a
  else begin
    let workers = min max_domains n in
    let results = Array.make n None in
    let chunk w =
      (* Static block partition of [0, n) across [workers]. *)
      let lo = w * n / workers and hi = ((w + 1) * n / workers) - 1 in
      for i = lo to hi do
        results.(i) <- Some (f a.(i))
      done
    in
    let domains =
      Array.init (workers - 1) (fun w -> Domain.spawn (fun () -> chunk (w + 1)))
    in
    chunk 0;
    Array.iter Domain.join domains;
    Array.map
      (function Some x -> x | None -> failwith "Parallel.map_array: hole")
      results
  end

let map_array f a = map_array_impl ~gated:true f a
let force_map_array f a = map_array_impl ~gated:false f a

(* Parallel [List.init n f] specialised to arrays. *)
let init n f = map_array f (Array.init n (fun i -> i))

let map2_array f a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Parallel.map2_array";
  map_array (fun i -> f a.(i) b.(i)) (Array.init n (fun i -> i))
