(* Deterministic, splittable random-number generation.

   Every randomized component of the framework (Jellyfish construction,
   random matchings, workload shuffles, ...) takes an explicit [Rng.t] so
   that experiments are reproducible from a single integer seed and
   independent sub-streams can be handed to parallel workers without
   sharing mutable state. *)

type t = Random.State.t

let make seed = Random.State.make [| seed; 0x7b0b3; seed lxor 0x5ca1ab1e |]

let default () = make 42

(* Derive an independent-looking child stream. Mixing with SplitMix64-style
   constants keeps children decorrelated even for consecutive indices. *)
let split t i =
  let a = Random.State.bits t in
  let h = (a + (i * 0x9e3779b9)) land 0x3fffffff in
  Random.State.make [| h; i; a lxor 0x2545f491 |]

let int t n = Random.State.int t n

let float t x = Random.State.float t x

let bool t = Random.State.bool t

(* Uniform integer in [lo, hi] inclusive. *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range";
  lo + Random.State.int t (hi - lo + 1)

(* Fisher-Yates shuffle, in place. *)
let shuffle_in_place t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t a =
  let b = Array.copy a in
  shuffle_in_place t b;
  b

(* Sample [k] distinct indices from [0, n). *)
let sample_without_replacement t ~n ~k =
  if k > n then invalid_arg "Rng.sample_without_replacement";
  let a = Array.init n (fun i -> i) in
  (* Partial Fisher-Yates: only the first k positions need to be drawn. *)
  for i = 0 to k - 1 do
    let j = int_range t i (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k

(* Pick one element of a non-empty array. *)
let choose t a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Rng.choose";
  a.(Random.State.int t n)
