(** Small-sample statistics: means and 95% Student-t confidence intervals,
    matching the paper's reporting (mean over 10 iterations, 95% two-sided
    CI error bars). *)

val mean : float array -> float

(** Unbiased sample variance (0 for fewer than two samples). *)
val variance : float array -> float

val stddev : float array -> float
val min_max : float array -> float * float
val median : float array -> float

(** Two-sided 95% Student-t critical value for [df] degrees of freedom. *)
val t_critical : df:int -> float

type summary = { mean : float; ci95 : float; n : int }

(** Mean with a 95% confidence half-width. *)
val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit
