.PHONY: all build test check bench bench-quick metrics micro perf perf-quick examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full gate: everything compiles and every suite passes.
check:
	dune build @all && dune runtest

# Writes BENCH_metrics.json next to bench_output.txt (per-experiment
# seconds, Fleischer phases, Dijkstra runs, simplex pivots).
bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# Quick sweep with the machine-readable metrics artifact as the point.
metrics:
	dune exec bench/main.exe -- --quick
	@echo "metrics written to BENCH_metrics.json"

bench-quick:
	dune exec bench/main.exe -- --quick

micro:
	dune exec bench/main.exe -- micro

# Tracked perf trajectory: warmup + median-of-N trials over the
# Fleischer-dominated workload set, written to BENCH_perf.json (with
# speedups against BENCH_perf_baseline.json when present).
perf:
	dune exec bench/main.exe -- perf

perf-quick:
	dune exec bench/main.exe -- perf --quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/worst_case_hunt.exe
	dune exec examples/expander_vs_fattree.exe
	dune exec examples/placement_shuffle.exe

clean:
	dune clean
