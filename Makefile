.PHONY: all build test check fuzz fuzz-quick warm-quick bench bench-quick metrics micro perf perf-quick perf-scale perf-scale-smoke perf-baseline loadgen loadgen-quick chaos-quick serve-smoke examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full gate: everything compiles and every suite passes.
check:
	dune build @all && dune runtest

# Differential fuzzing: replay the committed corpus, then fresh seeded
# instances through every solver route with certificate validation
# (lib/check). Non-zero exit on any certificate failure; the failing
# instance's seed is printed and can be pinned in test/corpus/.
fuzz:
	dune exec -- topobench check --instances 500 --seed 42 --corpus test/corpus
	dune exec -- topobench check --subject warm_vs_cold --instances 100 --seed 42

fuzz-quick:
	dune exec -- topobench check --instances 50 --seed 42 --corpus test/corpus
	dune exec -- topobench check --subject warm_vs_cold --instances 100 --seed 42

# Warm-start gate: the warm-vs-cold differential fuzz subject, then a
# quick perf run whose warm-failures workload records repair/bracket
# certificates and the warm-over-cold speedup, asserted by
# scripts/check_warm.sh (speedup >= 2x, all certificates green).
warm-quick:
	dune exec -- topobench check --subject warm_vs_cold --instances 100 --seed 42
	dune exec bench/main.exe -- perf --quick
	@sh scripts/check_warm.sh BENCH_perf.json 2.0

# Writes BENCH_metrics.json next to bench_output.txt (per-experiment
# seconds, Fleischer phases, Dijkstra runs, simplex pivots).
bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# Quick sweep with the machine-readable metrics artifact as the point.
metrics:
	dune exec bench/main.exe -- --quick
	@echo "metrics written to BENCH_metrics.json"

bench-quick:
	dune exec bench/main.exe -- --quick

micro:
	dune exec bench/main.exe -- micro

# Tracked perf trajectory: warmup + median-of-N trials over the
# Fleischer-dominated workload set, written to BENCH_perf.json (with
# speedups against BENCH_perf_baseline.json when present).
perf:
	dune exec bench/main.exe -- perf

perf-quick:
	dune exec bench/main.exe -- perf --quick

# Datacenter-scale certified brackets (~100k switches per instance; see
# Tb_topo.Catalog.scale_specs). Single-trial runs whose success metric
# is the certificate verdict, written to BENCH_perf_scale.json; exits
# non-zero on a red certificate or a blown wall budget
# (TOPOBENCH_SCALE_BUDGET_S, default 2400 s for the full roster).
perf-scale:
	dune exec bench/main.exe -- perf --scale

# CI-sized variant: one ~10k-switch fat tree under a 600 s default
# budget, same certificate gate.
perf-scale-smoke:
	dune exec bench/main.exe -- perf --scale-smoke

# Re-pin the committed perf baseline after an intentional perf change.
# Run on an idle machine; review the diff before committing.
perf-baseline:
	dune exec bench/main.exe -- perf --quick
	cp BENCH_perf.json BENCH_perf_baseline.json
	@echo "BENCH_perf_baseline.json updated; review and commit it"

# Service-tier benchmark: seeded Zipf-skewed request mix replayed
# against an in-process service, written to BENCH_service.json (with a
# comparison against BENCH_service_baseline.json when present).
loadgen:
	dune exec -- topobench loadgen --seed 42

loadgen-quick:
	dune exec -- topobench loadgen --seed 42 --requests 300

# Chaos gate: the same seeded mix replayed through the supervised
# 4-worker pool while workers are SIGKILLed/SIGSTOPped and response
# bytes truncated, every response checked against a fault-free oracle.
# Fails unless (a) zero responses were lost or incorrect, (b) the
# chaos actually bit (restarts happened), and (c) a deliberately tiny
# intake queue produced typed `overloaded` rejections rather than
# silent timeouts. Writes BENCH_service.json with a "pool" object.
chaos-quick:
	dune exec -- topobench loadgen --pool --seed 42 --requests 150 \
	  --workers 4 --max-queue 12 --wall-ms 5000 \
	  --chaos-kill 0.05 --chaos-stall 0.02 --chaos-truncate 0.03 \
	  --chaos-seed 11 --out BENCH_service.json --baseline ""
	@sh scripts/check_chaos.sh BENCH_service.json

# End-to-end smoke of the ndjson service: three requests, two of them
# identical — exactly one response must be a cache hit.
serve-smoke:
	dune build bin/topobench_cli.exe
	printf '%s\n%s\n%s\n' \
	  '{"topo":{"spec":"hypercube:2"},"tm":{"named":"rm1"}}' \
	  '{"topo":{"spec":"hypercube:2"},"tm":{"named":"lm"}}' \
	  '{"topo":{"spec":"hypercube:2"},"tm":{"named":"rm"}}' \
	  | dune exec bin/topobench_cli.exe -- serve > serve_smoke_out.ndjson
	@test "$$(grep -c '"cached":true' serve_smoke_out.ndjson)" = 1 \
	  || { echo "serve-smoke: expected exactly one cache hit"; \
	       cat serve_smoke_out.ndjson; rm -f serve_smoke_out.ndjson; exit 1; }
	@rm -f serve_smoke_out.ndjson
	@echo "serve-smoke: OK (3 requests, 1 cache hit)"

examples:
	dune exec examples/quickstart.exe
	dune exec examples/worst_case_hunt.exe
	dune exec examples/expander_vs_fattree.exe
	dune exec examples/placement_shuffle.exe

clean:
	dune clean
