.PHONY: all build test bench bench-quick micro examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

bench-quick:
	dune exec bench/main.exe -- --quick

micro:
	dune exec bench/main.exe -- micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/worst_case_hunt.exe
	dune exec examples/expander_vs_fattree.exe
	dune exec examples/placement_shuffle.exe

clean:
	dune clean
